package core

import (
	"math"
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// overlappingPair establishes two connections whose primaries overlap (so
// their S is cacheable) and whose backups share link 4->5 (so the pair meets
// in that link's mux state).
func overlappingPair(t *testing.T) (*Manager, *topology.Graph, *DConnection, *DConnection) {
	t.Helper()
	g, path := mesh3(t)
	m := newTestManager(g)
	a, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstablishOnPaths(spec1(), path(1, 2, 5),
		[]topology.Path{path(1, 4, 5)}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	return m, g, a, b
}

func TestSCachePromotionInvalidatesPair(t *testing.T) {
	m, g, a, b := overlappingPair(t)
	// Populate the pair cache the way production code does: a link
	// reconfiguration recomputes S for every entry pair on the link.
	if err := m.recomputeLinkMux(g.LinkBetween(4, 5)); err != nil {
		t.Fatal(err)
	}
	k := pairKey(a.ID, b.ID)
	v, ok := m.plan.scache.entries[k]
	if !ok {
		t.Fatal("recomputeLinkMux did not populate the S-cache")
	}
	oldS := v.s
	if want := m.referenceS(a, b); oldS != want {
		t.Fatalf("cached S = %g, reference %g", oldS, want)
	}
	epBefore := m.plan.scache.epoch(a.ID)

	// Fail a's primary: recovery promotes the backup, changing a's primary
	// path — every cached S involving a must become stale.
	if _, err := m.Apply(SingleLink(g.LinkBetween(0, 1)), OrderByConn, nil); err != nil {
		t.Fatal(err)
	}
	if a.Primary == nil || a.Primary.Path.String() != "0->3->4->5->2" {
		t.Fatalf("promotion did not happen: primary %v", a.Primary)
	}
	if ep := m.plan.scache.epoch(a.ID); ep <= epBefore {
		t.Fatalf("promotion did not bump a's primary epoch: %d -> %d", epBefore, ep)
	}
	// The invariant checker must not compare the stale entry...
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	// ...and a fresh lookup recomputes with the new primary.
	newS := m.pairS(a, b)
	if want := m.referenceS(a, b); newS != want {
		t.Fatalf("post-promotion S = %g, reference %g", newS, want)
	}
	if newS == oldS {
		t.Fatal("test is vacuous: promotion left S unchanged")
	}
}

func TestSCacheRejoinDemotionBumpsEpoch(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	// A still-listed primary rejoining as a backup leaves the connection
	// primary-less: its cached S values are based on a path it no longer has.
	epBefore := m.plan.scache.epoch(conn.ID)
	if err := m.RestoreAsBackup(conn.ID, conn.Primary.ID, 3); err != nil {
		t.Fatal(err)
	}
	if conn.Primary != nil {
		t.Fatal("rejoining primary should leave the connection primary-less")
	}
	if ep := m.plan.scache.epoch(conn.ID); ep <= epBefore {
		t.Fatalf("demotion did not bump the primary epoch: %d -> %d", epBefore, ep)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSCacheRejectedEstablishmentBumpsEpoch(t *testing.T) {
	// A rejected establishment rolls back without consuming the connection
	// ID; the next attempt reuses it with a different primary, so the undo
	// path must advance the epoch.
	g, path := mesh3(t)
	m := newTestManager(g)
	id := m.nextConn
	epBefore := m.plan.scache.epoch(id)
	_, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(3, 4, 5)}, []int{1}) // endpoints mismatch -> reject
	if err == nil {
		t.Fatal("expected rejection")
	}
	if ep := m.plan.scache.epoch(id); ep <= epBefore {
		t.Fatalf("rollback did not bump the reused ID's epoch: %d -> %d", epBefore, ep)
	}
}

func TestSCacheTeardownForgetsAndSweeps(t *testing.T) {
	m, g, a, b := overlappingPair(t)
	if err := m.recomputeLinkMux(g.LinkBetween(4, 5)); err != nil {
		t.Fatal(err)
	}
	if len(m.plan.scache.entries) == 0 {
		t.Fatal("cache not populated")
	}
	if err := m.Teardown(a.ID); err != nil {
		t.Fatal(err)
	}
	if ep := m.plan.scache.epoch(a.ID); ep != epochDead {
		t.Fatalf("teardown left epoch %d, want dead marker", ep)
	}
	// Pairs of a dead connection are unreachable; a sweep removes them.
	m.plan.scache.sweep()
	if _, ok := m.plan.scache.entries[pairKey(a.ID, b.ID)]; ok {
		t.Fatal("sweep kept a dead connection's pair")
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSCacheValuesBitIdentical(t *testing.T) {
	// The fast path (power table) must agree with the reference formula to
	// the bit, since CheckMuxInvariants compares at 1e-15.
	g, path := mesh3(t)
	m := newTestManager(g)
	a, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstablishOnPaths(spec1(), path(0, 1, 2, 5),
		[]topology.Path{path(0, 3, 4, 5)}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	got := m.pairS(a, b)
	want := m.referenceS(a, b)
	if got != want || math.Signbit(got) != math.Signbit(want) {
		t.Fatalf("fast S = %v, reference %v", got, want)
	}
	if _, err := m.Establish(6, 8, rtchan.DefaultSpec(), []int{3}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}
