package core

import (
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// TestEstablishAllocs pins the allocation budget of the sequential
// establishment path. The plan phase runs entirely on reusable arenas
// (router scratch, plan buffers, Π scratch), so the only allocations left
// are the objects that outlive the call: two paths, the DConnection, its
// channels, and the committed Π slices. A regression here means a scratch
// buffer leaked into the steady-state path.
func TestEstablishAllocs(t *testing.T) {
	g := topology.NewTorus(8, 8, 200)
	m := NewManager(g, DefaultConfig())
	spec := rtchan.DefaultSpec()

	// Load the network the way bench_test.go's BenchmarkSingleEstablish
	// does, so admission scans run against populated Π structures.
	n := g.NumNodes()
	loaded := 0
	for s := 0; s < n && loaded < 2000; s++ {
		for d := 0; d < n && loaded < 2000; d++ {
			if s == d {
				continue
			}
			if _, err := m.Establish(topology.NodeID(s), topology.NodeID(d), spec, []int{3}); err == nil {
				loaded++
			}
		}
	}

	allocs := testing.AllocsPerRun(200, func() {
		conn, err := m.Establish(0, 36, spec, []int{3})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Teardown(conn.ID); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 12.0 (teardown is alloc-free); the ceiling leaves slack for
	// map-internal variance, not for regressions (the pre-split path was
	// 87 allocs for the establishment alone).
	const ceiling = 16
	if allocs > ceiling {
		t.Fatalf("establish+teardown = %.1f allocs/op, ceiling %d", allocs, ceiling)
	}
	t.Logf("establish+teardown = %.1f allocs/op", allocs)
}
