package bcpd

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/core"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// Dispatch rounds (round.go) must be a pure mechanism change: batching the
// fan-out per link, bulk-arming rejoin timers, and batching claim releases
// may not move, reorder, or drop a single protocol event relative to the
// per-message engine. These tests run the same seeded storm twice — once
// with PerMessageDispatch, once batched — and require the two worlds to be
// bit-identical: full trace streams, network counters, every daemon's
// channel state, and the quiescence audit.

// dispatchWorld is the end state of one seeded storm run.
type dispatchWorld struct {
	events []trace.Event
	stats  Stats
	states []map[rtchan.ChannelID]chanState
	quiet  []string
}

func runDispatchWorld(t *testing.T, seed int64, perMsg, heartbeat bool) dispatchWorld {
	return runTappedDispatchWorld(t, seed, perMsg, heartbeat, nil)
}

// runTappedDispatchWorld is runDispatchWorld with an optional FrameTap —
// the corpus harvester (harvest_test.go) taps the same storms the
// equivalence tests compare.
func runTappedDispatchWorld(t *testing.T, seed int64, perMsg, heartbeat bool, tap func(topology.LinkID, []byte)) dispatchWorld {
	t.Helper()
	g := topology.NewTorus(6, 6, 100)
	eng := sim.New(1)
	mgr := core.NewManager(g, core.DefaultConfig())
	rng := rand.New(rand.NewSource(seed))
	var conns []*core.DConnection
	for i := 0; i < 70; i++ {
		s := topology.NodeID(rng.Intn(36))
		d := topology.NodeID(rng.Intn(36))
		if s == d {
			continue
		}
		c, err := mgr.Establish(s, d, rtchan.DefaultSpec(), []int{1 + rng.Intn(4)})
		if err == nil {
			conns = append(conns, c)
		}
	}
	rec := &trace.Recorder{}
	cfg := DefaultConfig()
	cfg.Sink = rec
	cfg.PerMessageDispatch = perMsg
	cfg.RejoinTimeout = sim.Duration(600 * time.Millisecond)
	cfg.RejoinProbeDelay = sim.Duration(60 * time.Millisecond)
	if heartbeat {
		cfg.HeartbeatInterval = sim.Duration(20 * time.Millisecond)
	}
	cfg.FrameTap = tap
	net := New(eng, mgr, cfg)
	for _, c := range conns[:4] {
		if err := net.StartTraffic(c.ID, 100); err != nil {
			t.Fatal(err)
		}
	}
	// Draw the whole fault schedule upfront so both worlds consume the rng
	// identically regardless of what the run does with it.
	var failedNodes []topology.NodeID
	var failedLinks []topology.LinkID
	for i := 0; i < 10; i++ {
		at := sim.Duration(80+230*i) * sim.Duration(time.Millisecond)
		if i%3 == 0 {
			v := topology.NodeID(rng.Intn(36))
			failedNodes = append(failedNodes, v)
			repair := i%6 == 0
			eng.Schedule(at, func() {
				net.FailNode(v)
				if repair {
					eng.Schedule(140*time.Millisecond, func() { net.RepairNode(v) })
				}
			})
		} else {
			l := topology.LinkID(rng.Intn(g.NumLinks()))
			failedLinks = append(failedLinks, l)
			repair := i%2 == 0
			eng.Schedule(at, func() {
				net.FailLink(l)
				if repair {
					eng.Schedule(140*time.Millisecond, func() { net.RepairLink(l) })
				}
			})
		}
	}
	eng.RunFor(3 * time.Second)
	// Heal the world and drain so the end states are comparable quiet
	// points, then audit.
	for _, v := range failedNodes {
		net.RepairNode(v)
	}
	for _, l := range failedLinks {
		net.RepairLink(l)
	}
	for _, c := range conns[:4] {
		net.StopTraffic(c.ID)
	}
	eng.RunFor(5 * time.Second)
	w := dispatchWorld{events: rec.Events, stats: net.Stats(), quiet: net.CheckQuiescence()}
	for v := 0; v < g.NumNodes(); v++ {
		w.states = append(w.states, net.Daemon(topology.NodeID(v)).states)
	}
	return w
}

func requireSameWorlds(t *testing.T, ctx string, seq, bat dispatchWorld) {
	t.Helper()
	if len(seq.events) != len(bat.events) {
		t.Fatalf("%s: event count %d vs %d", ctx, len(seq.events), len(bat.events))
	}
	for i := range seq.events {
		if seq.events[i] != bat.events[i] {
			t.Fatalf("%s: event %d diverged:\n  per-message: %v\n  batched:     %v",
				ctx, i, seq.events[i], bat.events[i])
		}
	}
	if seq.stats != bat.stats {
		t.Fatalf("%s: stats diverged:\n  per-message: %+v\n  batched:     %+v", ctx, seq.stats, bat.stats)
	}
	for v := range seq.states {
		ss, sb := seq.states[v], bat.states[v]
		if len(ss) != len(sb) {
			t.Fatalf("%s: node %d holds %d channel states vs %d", ctx, v, len(ss), len(sb))
		}
		for ch, s := range ss {
			if sb[ch] != s {
				t.Fatalf("%s: node %d channel %d state %v vs %v", ctx, v, ch, s, sb[ch])
			}
		}
	}
	if len(seq.quiet) != len(bat.quiet) {
		t.Fatalf("%s: quiescence audit %v vs %v", ctx, seq.quiet, bat.quiet)
	}
	for i := range seq.quiet {
		if seq.quiet[i] != bat.quiet[i] {
			t.Fatalf("%s: quiescence audit line %d: %q vs %q", ctx, i, seq.quiet[i], bat.quiet[i])
		}
	}
}

func TestBatchedDispatchMatchesPerMessage(t *testing.T) {
	for _, hb := range []bool{false, true} {
		name := "oracle"
		if hb {
			name = "heartbeat"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				ctx := fmt.Sprintf("%s/seed%d", name, seed)
				seq := runDispatchWorld(t, seed, true, hb)
				bat := runDispatchWorld(t, seed, false, hb)
				if len(seq.events) == 0 {
					t.Fatalf("%s: storm produced no events; the comparison is vacuous", ctx)
				}
				requireSameWorlds(t, ctx, seq, bat)
			}
		})
	}
}
