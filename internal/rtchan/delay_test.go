package rtchan

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/topology"
)

func delayTestNet(t *testing.T) (*Network, *topology.Graph) {
	t.Helper()
	g := topology.NewLine(4, 10) // 10 Mbps links
	return NewNetwork(g), g
}

func specWithMsg(bw float64, msgSize int) TrafficSpec {
	return TrafficSpec{Bandwidth: bw, MaxMsgSize: msgSize, MaxMsgRate: 100, SlackHops: 2}
}

func TestPerHopDelayBoundEmptyLink(t *testing.T) {
	n, g := delayTestNet(t)
	model := DelayModel{ControlFrameSize: 250, PropDelay: time.Millisecond}
	// 10 Mbps link, candidate 1000 B, control 250 B:
	// (250+1000)*8 bits / 10e6 bps = 1 ms, + 1 ms propagation.
	got := n.PerHopDelayBound(g.LinkBetween(0, 1), specWithMsg(1, 1000), model)
	if got != 2*time.Millisecond {
		t.Fatalf("bound = %v, want 2ms", got)
	}
}

func TestPerHopDelayBoundGrowsWithChannels(t *testing.T) {
	n, g := delayTestNet(t)
	model := DelayModel{ControlFrameSize: 0, PropDelay: 0}
	p, _ := topology.PathBetween(g, []topology.NodeID{0, 1, 2})
	if _, err := n.Establish(1, RolePrimary, 0, p, specWithMsg(1, 1250)); err != nil {
		t.Fatal(err)
	}
	l := g.LinkBetween(0, 1)
	before := n.PerHopDelayBound(l, specWithMsg(1, 1250), model)
	// One competing channel of 1250 B on a 10 Mbps link adds 1 ms.
	if before != 2*time.Millisecond {
		t.Fatalf("bound = %v, want 2ms (own + one competitor)", before)
	}
	// Backups do not contribute (they carry no data until activated).
	if _, err := n.Establish(2, RoleBackup, 1, p, specWithMsg(1, 5000)); err != nil {
		t.Fatal(err)
	}
	if got := n.PerHopDelayBound(l, specWithMsg(1, 1250), model); got != before {
		t.Fatalf("backup changed the bound: %v", got)
	}
}

func TestPathDelayBoundSums(t *testing.T) {
	n, g := delayTestNet(t)
	model := DelayModel{ControlFrameSize: 0, PropDelay: time.Millisecond}
	p, _ := topology.PathBetween(g, []topology.NodeID{0, 1, 2, 3})
	spec := specWithMsg(1, 1250)
	// 3 hops × (1 ms tx + 1 ms prop) = 6 ms.
	if got := n.PathDelayBound(p, spec, model); got != 6*time.Millisecond {
		t.Fatalf("bound = %v, want 6ms", got)
	}
}

func TestDelayAdmissionOwnContract(t *testing.T) {
	n, g := delayTestNet(t)
	model := DelayModel{ControlFrameSize: 0, PropDelay: time.Millisecond}
	p, _ := topology.PathBetween(g, []topology.NodeID{0, 1, 2, 3})
	spec := specWithMsg(1, 1250)
	spec.DelayBound = 6 * time.Millisecond
	if bound, ok := n.DelayAdmission(p, spec, model); !ok || bound != 6*time.Millisecond {
		t.Fatalf("admission: bound=%v ok=%v", bound, ok)
	}
	spec.DelayBound = 5 * time.Millisecond
	if _, ok := n.DelayAdmission(p, spec, model); ok {
		t.Fatal("admission accepted a violated contract")
	}
}

func TestDelayAdmissionProtectsEstablished(t *testing.T) {
	n, g := delayTestNet(t)
	model := DelayModel{ControlFrameSize: 0, PropDelay: 0}
	// An established channel with a contract that has 1 ms of slack.
	p1, _ := topology.PathBetween(g, []topology.NodeID{0, 1, 2})
	s1 := specWithMsg(1, 1250)
	s1.DelayBound = 3 * time.Millisecond // current bound: 2 hops × 1ms = 2ms
	if _, err := n.Establish(1, RolePrimary, 0, p1, s1); err != nil {
		t.Fatal(err)
	}
	// A small newcomer sharing one link (adds 0.2 ms there): fine.
	p2, _ := topology.PathBetween(g, []topology.NodeID{0, 1})
	small := specWithMsg(1, 250)
	if _, ok := n.DelayAdmission(p2, small, model); !ok {
		t.Fatal("harmless newcomer rejected")
	}
	// A big newcomer sharing both links (adds 2 × 1.6 ms): breaks s1.
	big := specWithMsg(1, 2000)
	if _, ok := n.DelayAdmission(p1, big, model); ok {
		t.Fatal("contract-breaking newcomer admitted")
	}
	// The same newcomer is fine if the established channel has no contract.
	n2, _ := delayTestNet(t)
	s1.DelayBound = 0
	if _, err := n2.Establish(1, RolePrimary, 0, p1, s1); err != nil {
		t.Fatal(err)
	}
	if _, ok := n2.DelayAdmission(p1, big, model); !ok {
		t.Fatal("newcomer rejected despite no contracts to protect")
	}
}
