package bcpd

import (
	"fmt"
	"slices"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// Sabotage deliberately re-introduces a fixed historical bug so harnesses
// can prove they would have caught it (chaos model-check self-tests). Nil —
// the only production value — changes nothing.
type Sabotage struct {
	// SkipPromoteRearm disables the promote-once guard rearm on rejoin:
	// a channel that has been promoted once can then never be promoted
	// again, the exact bug storm testing found in the recovery engine.
	SkipPromoteRearm bool
}

// CheckQuiescence audits the network at a fully-healed quiet point — every
// component repaired and the event queue drained — and returns one message
// per violated steady-state invariant (nil when clean, sorted-deterministic
// otherwise):
//
//   - pooled frame buffers and data boxes all returned (outstanding equals
//     the transport's in-transit census, and both are zero);
//   - RCC endpoints drained on every healthy link (nothing queued, nothing
//     awaiting acknowledgment);
//   - no daemon dead, no channel state stuck at U, no soft state for
//     channels the resource plane has released;
//   - daemon state agrees with the resource plane along every registered
//     channel's path (P for the connection's primary, B for backups), and
//     every surviving primary-role channel is its connection's primary;
//   - no spare-bandwidth claims left behind.
//
// Anything still in flight — packets, live rejoin timers, pending repairs —
// legitimately fails these rules; callers quiesce first (StopTraffic, repair
// everything, drain the engine).
func (n *Network) CheckQuiescence() []string {
	var v []string

	framesOut, dataOut := n.PoolOutstanding()
	if tr, ok := n.tr.(interface{ InTransit() (int, int) }); ok {
		framesIn, dataIn := tr.InTransit()
		if framesOut != framesIn || dataOut != dataIn {
			v = append(v, fmt.Sprintf("pool imbalance: outstanding %d frames/%d data vs in-transit %d/%d",
				framesOut, dataOut, framesIn, dataIn))
		}
	}
	if framesOut != 0 || dataOut != 0 {
		v = append(v, fmt.Sprintf("pooled payloads leaked: %d frames, %d data boxes outstanding", framesOut, dataOut))
	}

	for _, lr := range n.links {
		if lr.down {
			v = append(v, fmt.Sprintf("link %d still down", lr.id))
			continue
		}
		if b := lr.rccE.Backlog(); b > 0 {
			v = append(v, fmt.Sprintf("link %d: rcc backlog %d (unacked or unsent controls)", lr.id, b))
		}
	}

	for _, d := range n.nodes {
		if d.dead {
			v = append(v, fmt.Sprintf("node %d still dead", d.id))
			continue
		}
		chans := make([]rtchan.ChannelID, 0, len(d.states))
		for ch := range d.states {
			chans = append(chans, ch)
		}
		slices.Sort(chans)
		for _, ch := range chans {
			s := d.states[ch]
			if s == stateU {
				v = append(v, fmt.Sprintf("node %d: channel %d stuck in state U", d.id, ch))
				continue
			}
			c := n.mgr.Network().Channel(ch)
			if c == nil {
				v = append(v, fmt.Sprintf("node %d: state %s for released channel %d", d.id, s, ch))
				continue
			}
			want := stateB
			if c.Role == rtchan.RolePrimary {
				want = stateP
			}
			if s != want {
				v = append(v, fmt.Sprintf("node %d: channel %d in state %s, resource plane says %s",
					d.id, ch, s, c.Role))
			}
		}
		if len(d.rejoinTimers) > 0 {
			armed := 0
			for _, t := range d.rejoinTimers {
				if t.active() {
					armed++
				}
			}
			if armed > 0 {
				v = append(v, fmt.Sprintf("node %d: %d rejoin timers still armed", d.id, armed))
			}
		}
	}

	for _, conn := range n.mgr.Connections() {
		if conn.Primary != nil {
			if conn.Primary.Role != rtchan.RolePrimary {
				v = append(v, fmt.Sprintf("conn %d: primary channel %d has role %s",
					conn.ID, conn.Primary.ID, conn.Primary.Role))
			}
			for _, node := range conn.Primary.Path.Nodes() {
				if s := n.nodes[node].states[conn.Primary.ID]; s != stateP {
					v = append(v, fmt.Sprintf("conn %d: primary %d not P at node %d (state %s)",
						conn.ID, conn.Primary.ID, node, s))
				}
			}
		}
		for _, b := range conn.Backups {
			if b.Role == rtchan.RolePrimary && (conn.Primary == nil || conn.Primary.ID != b.ID) {
				v = append(v, fmt.Sprintf("conn %d: channel %d keeps primary role but is listed as backup",
					conn.ID, b.ID))
			}
			for _, node := range b.Path.Nodes() {
				if s := n.nodes[node].states[b.ID]; s != stateB {
					v = append(v, fmt.Sprintf("conn %d: backup %d not B at node %d (state %s)",
						conn.ID, b.ID, node, s))
				}
			}
		}
	}

	if claims := n.mgr.OutstandingClaims(); claims > 0 {
		v = append(v, fmt.Sprintf("%d spare-bandwidth claims leaked", claims))
	}
	return n.checkRoundQuiescence(v)
}

// ConnectionEstablished reports whether the connection exists with a healthy
// primary: registered, carrying a primary whose every path node is alive,
// agrees it is in state P, and whose every path link is up. This is the
// liveness endpoint chaos episodes assert after a survivable fault schedule.
func (n *Network) ConnectionEstablished(connID rtchan.ConnID) bool {
	conn := n.mgr.Connection(connID)
	if conn == nil || conn.Primary == nil {
		return false
	}
	for _, node := range conn.Primary.Path.Nodes() {
		d := n.nodes[node]
		if d.dead || d.states[conn.Primary.ID] != stateP {
			return false
		}
	}
	for _, l := range conn.Primary.Path.Links() {
		if n.links[l].down {
			return false
		}
	}
	return true
}

// NodeDown reports whether node v's daemon is currently crashed.
func (n *Network) NodeDown(v topology.NodeID) bool {
	return n.nodes[v].dead
}
