package routing

import (
	"container/heap"

	"github.com/rtcl/bcp/internal/topology"
)

// WeightFunc assigns a positive cost to a link. Weighted routing is used by
// load-aware backup-routing extensions ([HAN97b] reduces spare bandwidth by
// steering backups toward links where they multiplex well); the paper's main
// results use unit weights.
type WeightFunc func(topology.LinkID) float64

// pqItem is a priority-queue entry for Dijkstra's algorithm.
type pqItem struct {
	node topology.NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// MinCostPath returns a minimum-cost path from src to dst under c with link
// costs given by w, and whether one exists. Hop limits in c are honored as a
// hard constraint on the number of links.
func MinCostPath(g *topology.Graph, src, dst topology.NodeID, c Constraint, w WeightFunc) (topology.Path, bool) {
	if src == dst || w == nil {
		return topology.Path{}, false
	}
	type label struct {
		dist float64
		hops int
		via  topology.LinkID
	}
	labels := make([]label, g.NumNodes())
	for i := range labels {
		labels[i] = label{dist: -1, via: topology.NoLink}
	}
	labels[src] = label{dist: 0, via: topology.NoLink}
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		lb := labels[it.node]
		if it.dist > lb.dist {
			continue // stale entry
		}
		if it.node == dst {
			break
		}
		if c.MaxHops > 0 && lb.hops >= c.MaxHops {
			continue
		}
		for _, l := range g.Out(it.node) {
			if !c.linkOK(l) {
				continue
			}
			lk := g.Link(l)
			if lk.To != dst && !c.nodeOK(lk.To) {
				continue
			}
			cost := w(l)
			if cost <= 0 {
				cost = 1e-9 // guard against zero/negative weights
			}
			nd := lb.dist + cost
			tl := labels[lk.To]
			if tl.dist < 0 || nd < tl.dist {
				labels[lk.To] = label{dist: nd, hops: lb.hops + 1, via: l}
				heap.Push(q, pqItem{node: lk.To, dist: nd})
			}
		}
	}
	if labels[dst].dist < 0 {
		return topology.Path{}, false
	}
	// Reconstruct by following via links backwards.
	var rev []topology.LinkID
	for cur := dst; cur != src; {
		l := labels[cur].via
		rev = append(rev, l)
		cur = g.Link(l).From
	}
	links := make([]topology.LinkID, len(rev))
	for i, l := range rev {
		links[len(rev)-1-i] = l
	}
	p, err := topology.NewPath(g, links)
	if err != nil {
		return topology.Path{}, false // negative-free Dijkstra can still braid under MaxHops; treat as no path
	}
	if c.MaxHops > 0 && p.Hops() > c.MaxHops {
		return topology.Path{}, false
	}
	return p, true
}
