package bcpd

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/sim"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/wire"
)

// UDPTransport carries protocol traffic between live daemons as real
// datagrams: one loopback UDP socket per node, every message marshaled into
// the wire package's datagram envelope, one reader goroutine per node
// posting deliveries to its actor mailbox. Unlike the pipe transport the
// wire itself can drop and reorder — rcc's seq/ACK/retransmission machinery
// does real work here.
//
// Ownership: SendFrame serializes into a per-transport scratch buffer and
// returns the pooled frame to the network immediately (sends run
// runtime-serialized, so one scratch suffices). Received frames are handed
// to the daemons in per-datagram buffers owned by the GC — the receive path
// is not allocation-pinned.
type UDPTransport struct {
	post PostFunc

	n     *Network
	conns []*net.UDPConn // one socket per node
	addrs []*net.UDPAddr // conns[i].LocalAddr, resolved
	dest  []int          // link id -> destination node
	down  []atomic.Bool

	tx []byte // marshal scratch; sends are runtime-serialized

	closed  atomic.Bool
	wg      sync.WaitGroup
	dropped atomic.Uint64 // messages lost in transport (not link-down drops)
}

// NewUDPTransport creates a UDP transport delivering through post (a
// realtime.Runtime's Post method). Sockets are opened at Attach.
func NewUDPTransport(post PostFunc) *UDPTransport {
	if post == nil {
		panic("bcpd: nil post")
	}
	return &UDPTransport{post: post}
}

// Attach opens one loopback socket per node and starts the readers.
func (t *UDPTransport) Attach(n *Network) {
	t.n = n
	g := n.mgr.Graph()
	t.conns = make([]*net.UDPConn, g.NumNodes())
	t.addrs = make([]*net.UDPAddr, g.NumNodes())
	for v := range t.conns {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			panic(fmt.Sprintf("bcpd: udp listen: %v", err))
		}
		t.conns[v] = c
		t.addrs[v] = c.LocalAddr().(*net.UDPAddr)
	}
	t.dest = make([]int, g.NumLinks())
	t.down = make([]atomic.Bool, g.NumLinks())
	for _, l := range g.Links() {
		t.dest[l.ID] = int(l.To)
	}
	for v, c := range t.conns {
		t.wg.Add(1)
		go t.read(v, c)
	}
}

// sendTo marshals and transmits one datagram over link l from
// runtime-serialized context, reporting acceptance (a down link refuses).
func (t *UDPTransport) sendTo(l topology.LinkID, kind uint8, payload func([]byte) []byte) bool {
	if t.down[l].Load() || t.closed.Load() {
		return false
	}
	b := wire.AppendDatagramHeader(t.tx[:0], kind, uint32(l))
	if payload != nil {
		b = payload(b)
	}
	_, err := t.conns[int(t.n.mgr.Graph().Link(l).From)].WriteToUDP(b, t.addrs[t.dest[l]])
	t.tx = b[:0]
	if err != nil {
		t.dropped.Add(1) // accepted by the transport, lost on the wire
	}
	return true
}

// SendFrame transmits a control frame and returns its pooled buffer
// immediately — the datagram carries a copy.
func (t *UDPTransport) SendFrame(l topology.LinkID, frame []byte) {
	t.sendTo(l, wire.DgramFrame, func(b []byte) []byte { return append(b, frame...) })
	t.n.reclaimFrame(frame)
}

// SendData transmits a data message and reclaims its box immediately.
func (t *UDPTransport) SendData(l topology.LinkID, p *dataPayload) {
	t.sendTo(l, wire.DgramData, func(b []byte) []byte {
		return wire.DataMsg{
			Conn:      int64(p.conn),
			Channel:   int64(p.ch),
			Seq:       p.seq,
			SentNanos: int64(p.sent),
		}.AppendTo(b)
	})
	t.n.reclaimData(p)
}

// SendHeartbeat transmits a heartbeat datagram.
func (t *UDPTransport) SendHeartbeat(l topology.LinkID) {
	t.sendTo(l, wire.DgramHeartbeat, nil)
}

// SetLinkDown fails or repairs link l; a down link drops at the send side.
func (t *UDPTransport) SetLinkDown(l topology.LinkID, down bool) { t.down[l].Store(down) }

// read is node v's receive loop: parse the envelope, post delivery to the
// node's mailbox. Malformed datagrams are dropped — on a real wire that is
// loss, and retransmission recovers control traffic.
func (t *UDPTransport) read(v int, c *net.UDPConn) {
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := c.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		kind, link, payload, err := wire.ParseDatagramHeader(buf[:sz])
		if err != nil {
			t.dropped.Add(1)
			continue
		}
		l := topology.LinkID(link)
		if int(l) >= len(t.dest) || t.dest[l] != v {
			t.dropped.Add(1)
			continue // misaddressed
		}
		n := t.n
		var ok bool
		switch kind {
		case wire.DgramFrame:
			data := append([]byte(nil), payload...)
			ok = t.post(v, func() { n.deliverForeignFrame(l, data) })
		case wire.DgramData:
			m, perr := wire.ParseDataMsg(payload)
			if perr != nil {
				t.dropped.Add(1)
				continue
			}
			ok = t.post(v, func() {
				p := n.getDataBox()
				*p = dataPayload{
					conn: rtchan.ConnID(m.Conn),
					ch:   rtchan.ChannelID(m.Channel),
					seq:  m.Seq,
					sent: sim.Time(m.SentNanos),
				}
				n.deliverData(l, p)
			})
		case wire.DgramHeartbeat:
			ok = t.post(v, func() { n.deliverHeartbeat(l) })
		}
		if !ok {
			t.dropped.Add(1)
		}
	}
}

// Dropped returns messages lost inside the transport (send errors, malformed
// or misaddressed datagrams, delivery refused by a full mailbox).
func (t *UDPTransport) Dropped() uint64 { return t.dropped.Load() }

// Close shuts the sockets, stopping the readers. Call before stopping the
// runtime.
func (t *UDPTransport) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	for _, c := range t.conns {
		c.Close()
	}
	t.wg.Wait()
}
