package routing

import (
	"github.com/rtcl/bcp/internal/topology"
)

// WeightFunc assigns a positive cost to a link. Weighted routing is used by
// load-aware backup-routing extensions ([HAN97b] reduces spare bandwidth by
// steering backups toward links where they multiplex well); the paper's main
// results use unit weights.
type WeightFunc func(topology.LinkID) float64

// MinCostPath returns a minimum-cost path from src to dst under c with link
// costs given by w, and whether one exists. Hop limits in c are honored as a
// hard constraint on the number of links.
//
// The search runs on a throwaway Router; callers on hot paths should hold a
// Router and use its MinCostPath/MinCostLinks, which reuse the label arena
// and heap across calls.
func MinCostPath(g *topology.Graph, src, dst topology.NodeID, c Constraint, w WeightFunc) (topology.Path, bool) {
	return NewRouter(g).MinCostPath(src, dst, c, w)
}
