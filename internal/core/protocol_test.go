package core

import (
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

func TestClaimSpareForIdempotent(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b := conn.Backups[0]
	l := b.Path.Links()[0]
	if !m.ClaimSpareFor(l, b.ID, 1) {
		t.Fatal("first claim failed")
	}
	// Idempotent: the same channel claiming again succeeds without drawing
	// more from the pool.
	if !m.ClaimSpareFor(l, b.ID, 1) {
		t.Fatal("repeat claim failed")
	}
	if !m.ClaimedOn(l, b.ID) {
		t.Fatal("claim not recorded")
	}
	// Pool is size 1: a different channel cannot claim.
	if m.ClaimSpareFor(l, rtchan.ChannelID(999), 1) {
		t.Fatal("overdraw accepted")
	}
	m.ReleaseClaimFor(l, b.ID)
	if m.ClaimedOn(l, b.ID) {
		t.Fatal("release did not clear the claim")
	}
	if !m.ClaimSpareFor(l, rtchan.ChannelID(999), 1) {
		t.Fatal("pool not restored after release")
	}
	m.ReleaseClaimFor(l, rtchan.ChannelID(999))
	// Releasing a non-existent claim is a no-op.
	m.ReleaseClaimFor(l, rtchan.ChannelID(12345))
}

func TestActivateClaimedPromotes(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b := conn.Backups[0]
	for _, l := range b.Path.Links() {
		if !m.ClaimSpareFor(l, b.ID, 1) {
			t.Fatal("claim failed")
		}
	}
	if err := m.ActivateClaimed(conn.ID, b); err != nil {
		t.Fatal(err)
	}
	if conn.Primary == nil || conn.Primary.ID != b.ID {
		t.Fatal("backup not promoted")
	}
	for _, l := range b.Path.Links() {
		if m.plan.net.Dedicated(l) != 1 || m.plan.net.Spare(l) != 0 {
			t.Fatalf("link %d accounts wrong after promotion", l)
		}
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unknown connection errors.
	if err := m.ActivateClaimed(12345, b); err == nil {
		t.Fatal("unknown connection accepted")
	}
}

func TestActivateClaimedWithoutClaimsStillWorks(t *testing.T) {
	// The meeting-node race can leave a link unclaimed; ActivateClaimed
	// claims it on the spot when spare allows.
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ActivateClaimed(conn.ID, conn.Backups[0]); err != nil {
		t.Fatal(err)
	}
	if conn.Primary.Path.Hops() != 4 {
		t.Fatal("not promoted")
	}
}

func TestTeardownChannelSingle(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b := conn.Backups[0]
	if err := m.TeardownChannel(conn.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 0 {
		t.Fatal("backup list not updated")
	}
	for _, l := range b.Path.Links() {
		if m.plan.net.Spare(l) != 0 {
			t.Fatalf("spare not reclaimed on link %d", l)
		}
	}
	// Idempotent on an already-gone channel.
	if err := m.TeardownChannel(conn.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	// Tearing down the primary leaves a primary-less connection; tearing
	// down everything deletes it.
	if err := m.TeardownChannel(conn.ID, conn.Primary.ID); err != nil {
		t.Fatal(err)
	}
	if m.Connection(conn.ID) != nil {
		t.Fatal("empty connection not deleted")
	}
}

func TestRestoreAsBackupFromBackup(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b := conn.Backups[0]
	// Remove it from the mux engine (as a failure would), then restore.
	m.removeBackup(b)
	conn.Backups = nil
	conn.Degrees = nil
	if err := m.RestoreAsBackup(conn.ID, b.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 1 || conn.Degrees[0] != 2 {
		t.Fatalf("restore bookkeeping wrong: %v %v", conn.Backups, conn.Degrees)
	}
	if m.plan.net.Spare(b.Path.Links()[0]) != 1 {
		t.Fatal("spare not re-reserved")
	}
	// Restoring again is a no-op.
	if err := m.RestoreAsBackup(conn.ID, b.ID, 2); err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 1 {
		t.Fatal("duplicate restore")
	}
}

func TestRestoreAsBackupDemotesPrimary(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	oldPrimary := conn.Primary
	// Promote the backup (recovery), then rejoin the old primary.
	if err := m.ActivateClaimed(conn.ID, conn.Backups[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreAsBackup(conn.ID, oldPrimary.ID, 3); err != nil {
		t.Fatal(err)
	}
	if oldPrimary.Role != rtchan.RoleBackup {
		t.Fatal("old primary not demoted")
	}
	for _, l := range oldPrimary.Path.Links() {
		if m.plan.net.Dedicated(l) != 0 {
			t.Fatalf("dedicated bandwidth not released on link %d", l)
		}
		if m.plan.net.Spare(l) != 1 {
			t.Fatalf("spare not reserved for the rejoined backup on link %d", l)
		}
	}
	if err := m.CheckMuxInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptClaimOrdering(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	// Two multiplexed backups share one unit of spare on 3->4.
	c1, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.EstablishOnPaths(spec1(), path(6, 7, 8),
		[]topology.Path{path(6, 3, 4, 5, 8)}, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	l := g.LinkBetween(3, 4)
	b1, b2 := c1.Backups[0], c2.Backups[0]
	if !m.ClaimSpareFor(l, b1.ID, 1) {
		t.Fatal("claim failed")
	}
	// Higher priority (degree 7) preempts the degree-8 holder.
	victim, ok := m.PreemptClaim(l, b2.ID, 7, 1)
	if !ok || victim != b1.ID {
		t.Fatalf("preempt: victim=%d ok=%v", victim, ok)
	}
	if !m.ClaimedOn(l, b2.ID) || m.ClaimedOn(l, b1.ID) {
		t.Fatal("claims not transferred")
	}
	// Equal or lower priority cannot preempt.
	if _, ok := m.PreemptClaim(l, b1.ID, 8, 1); ok {
		t.Fatal("lower priority preempted a higher one")
	}
	if _, ok := m.PreemptClaim(l, b1.ID, 7, 1); ok {
		t.Fatal("equal priority preempted")
	}
}

func TestDegreeOf(t *testing.T) {
	g, path := mesh3(t)
	m := newTestManager(g)
	conn, err := m.EstablishOnPaths(spec1(), path(0, 1, 2),
		[]topology.Path{path(0, 3, 4, 5, 2)}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.DegreeOf(conn.Backups[0].ID); got != 5 {
		t.Fatalf("degree = %d", got)
	}
	if got := m.DegreeOf(conn.Primary.ID); got != 1<<30 {
		t.Fatalf("primary degree = %d, want sentinel", got)
	}
	if got := m.DegreeOf(rtchan.ChannelID(999)); got != 1<<30 {
		t.Fatalf("unknown degree = %d, want sentinel", got)
	}
}
