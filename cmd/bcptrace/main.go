// Command bcptrace runs one failure-recovery scenario through the
// message-level BCP protocol engine and renders its typed event stream:
// detection, failure reports and their hops, Figure-4 state transitions,
// activations, spare-bandwidth claims, multiplexing failures, rejoins,
// teardowns, and RCC retransmissions.
//
// Usage:
//
//	bcptrace                       # default: 8-hop torus connection, link crash
//	bcptrace -scheme 1             # destination-initiated switching
//	bcptrace -fail 5               # crash the primary's 6th link
//	bcptrace -backups 2 -hit-first # also crash backup 1: activation retrial
//	bcptrace -repair 200ms         # repair the link, watch the rejoin
//	bcptrace -json > run.jsonl     # machine-readable JSONL export
//	bcptrace -rcc                  # include per-frame RCC transport events
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rtcl/bcp/internal/bcpd"
	"github.com/rtcl/bcp/internal/conformance"
	"github.com/rtcl/bcp/internal/experiment"
	"github.com/rtcl/bcp/internal/metrics"
	"github.com/rtcl/bcp/internal/trace"
)

func main() {
	var (
		scheme   = flag.Int("scheme", 3, "channel-switching scheme (1|2|3)")
		failPos  = flag.Int("fail", 2, "primary link index to crash")
		backups  = flag.Int("backups", 1, "number of backup channels")
		hitFirst = flag.Bool("hit-first", false, "also crash the first backup's last link")
		repair   = flag.Duration("repair", 0, "repair the failed link after this delay (0 = never)")
		rate     = flag.Float64("rate", 500, "data message rate (msgs/s)")
		jsonOut  = flag.Bool("json", false, "emit the event stream as JSONL on stdout")
		withRCC  = flag.Bool("rcc", false, "include per-frame RCC transport events in the rendering")
	)
	flag.Parse()

	s := experiment.DefaultTraceScenario()
	s.Scheme = bcpd.Scheme(*scheme)
	s.FailPos = *failPos
	s.Backups = *backups
	s.HitFirst = *hitFirst
	s.Repair = *repair
	s.Rate = *rate
	run, err := experiment.RunTraceScenario(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcptrace:", err)
		os.Exit(1)
	}

	if *jsonOut {
		if err := trace.WriteJSONL(os.Stdout, run.Events); err != nil {
			fmt.Fprintln(os.Stderr, "bcptrace:", err)
			os.Exit(1)
		}
		return
	}

	conn := run.Conn
	fmt.Printf("connection %d: primary %v\n", conn.ID, conn.Primary.Path)
	for i, b := range conn.Backups {
		fmt.Printf("backup %d: %v\n", i+1, b.Path)
	}
	agg := metrics.NewProtocolAggregator()
	for _, ev := range run.Events {
		agg.Emit(ev)
		switch ev.Kind {
		case trace.KindRCCFrame, trace.KindRCCRetransmit, trace.KindRCCAck:
			if !*withRCC {
				continue
			}
		case trace.KindState:
			// Transitions are numerous; render only end-node and failure
			// transitions to keep the default view readable.
			if ev.To == trace.StateB && ev.From == trace.StateN {
				continue
			}
		}
		fmt.Printf("%12v  %s\n", time.Duration(ev.At), describe(ev))
	}

	st := run.Net.Stats()
	fmt.Printf("\nsummary: reports=%d activations=%d muxfail=%d rejoins=%d expiries=%d\n",
		st.ReportsGenerated, st.ActivationsStarted, st.MuxFailures, st.Rejoins, st.RejoinExpiries)
	fmt.Printf("data: sent=%d delivered=%d lost=%d  disruption=%v\n",
		st.DataSent, st.DataDelivered, st.DataSent-st.DataDelivered,
		time.Duration(run.Net.MaxArrivalGap(conn.ID)))
	fmt.Printf("\n%s", agg.Render())

	p := conformance.Params{
		DMax:           run.DMax,
		DetectionSlack: bcpd.DefaultConfig().DetectionLatency + s.Repair,
		PropSlack:      bcpd.DefaultConfig().PropDelay,
	}
	// A run that ends mid-rejoin can hold claims legitimately; bcptrace is
	// a viewer, so report rather than fail.
	p.AllowOutstandingClaims = true
	if viols := conformance.Check(run.Events, p); len(viols) > 0 {
		fmt.Printf("\nconformance violations:\n")
		for _, v := range viols {
			fmt.Printf("  %v\n", v)
		}
	} else {
		fmt.Printf("\nconformance: ok\n")
	}
}

// describe renders one event like the old printf trace: a node column when
// the event has a location, then the story.
func describe(ev trace.Event) string {
	loc := "---    "
	if ev.Node >= 0 {
		loc = fmt.Sprintf("node %-2d", ev.Node)
	}
	var what string
	switch ev.Kind {
	case trace.KindLinkDown:
		what = fmt.Sprintf("link %d crashes", ev.Link)
	case trace.KindLinkUp:
		what = fmt.Sprintf("link %d repaired", ev.Link)
	case trace.KindNodeDown:
		what = "node crashes"
	case trace.KindNodeUp:
		what = "node repaired"
	case trace.KindDetect:
		what = fmt.Sprintf("heartbeats lost on link %d: declaring failure", ev.Link)
	case trace.KindReportOriginate:
		what = fmt.Sprintf("detects failure of channel %d, reporting toward %+d", ev.Channel, ev.Aux)
	case trace.KindReportHop:
		what = fmt.Sprintf("failure report for channel %d arrives via link %d", ev.Channel, ev.Link)
	case trace.KindState:
		what = fmt.Sprintf("channel %d: %v -> %v", ev.Channel, ev.From, ev.To)
	case trace.KindInstall:
		what = fmt.Sprintf("channel %d installed as %v (%d hops)", ev.Channel, ev.To, ev.Aux)
	case trace.KindActivationStart:
		end := "destination"
		if ev.Aux == 1 {
			end = "source"
		}
		what = fmt.Sprintf("activating backup %d from the %s", ev.Channel, end)
	case trace.KindActivationHop:
		what = fmt.Sprintf("activation of backup %d arrives via link %d", ev.Channel, ev.Link)
	case trace.KindActivationMeet:
		what = fmt.Sprintf("activations of backup %d meet: discarding", ev.Channel)
	case trace.KindActivationDone:
		what = fmt.Sprintf("activation of backup %d complete: promoting", ev.Channel)
	case trace.KindSourceSwitch:
		what = fmt.Sprintf("source of connection %d resumes data on channel %d", ev.Conn, ev.Channel)
	case trace.KindClaim:
		what = fmt.Sprintf("channel %d claims spare on link %d", ev.Channel, ev.Link)
	case trace.KindClaimRelease:
		what = fmt.Sprintf("channel %d releases claim on link %d", ev.Channel, ev.Link)
	case trace.KindClaimConvert:
		what = fmt.Sprintf("claim of channel %d on link %d converted to dedicated", ev.Channel, ev.Link)
	case trace.KindPreempt:
		what = fmt.Sprintf("channel %d preempts claim of channel %d on link %d", ev.Channel, ev.Aux, ev.Link)
	case trace.KindMuxFailure:
		what = fmt.Sprintf("multiplexing failure for backup %d", ev.Channel)
	case trace.KindRejoinRequest:
		what = fmt.Sprintf("probing failed channel %d with rejoin-request", ev.Channel)
	case trace.KindRejoin:
		what = fmt.Sprintf("channel %d repaired: sending rejoin", ev.Channel)
	case trace.KindRejoinExpire:
		what = fmt.Sprintf("rejoin timer expired for channel %d: tearing down", ev.Channel)
	case trace.KindClosure:
		what = fmt.Sprintf("closing channel %d", ev.Channel)
	case trace.KindTeardown:
		what = fmt.Sprintf("tearing down connection %d", ev.Conn)
	case trace.KindReplenish:
		what = fmt.Sprintf("connection %d replenished with backup %d (%d hops)", ev.Conn, ev.Channel, ev.Aux)
	case trace.KindRCCFrame:
		what = fmt.Sprintf("rcc frame on link %d (%d controls)", ev.Link, ev.Aux)
	case trace.KindRCCRetransmit:
		what = fmt.Sprintf("rcc retransmits frame %d on link %d", ev.Aux, ev.Link)
	case trace.KindRCCAck:
		what = fmt.Sprintf("rcc pure ack on link %d (cum %d)", ev.Link, ev.Aux)
	default:
		what = ev.String()
	}
	return loc + "  " + what
}
