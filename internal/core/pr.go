package core

import (
	"fmt"

	"github.com/rtcl/bcp/internal/reliability"
	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
)

// ConnectionPr computes the fault-tolerance QoS parameter Pr of a live
// D-connection under the paper's combinatorial model (§3.3): the probability
// that within one time unit either the primary survives, or some backup
// survives both component failures and multiplexing failures.
func (m *Manager) ConnectionPr(conn *DConnection) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.connectionPr(conn)
}

func (m *Manager) connectionPr(conn *DConnection) float64 {
	if conn.Primary == nil {
		return 0
	}
	backups := make([]reliability.BackupInfo, 0, len(conn.Backups))
	for i, b := range conn.Backups {
		nu := reliability.NuForDegree(m.plan.cfg.Lambda, degreeAt(conn, i))
		pmux := reliability.MuxFailureBound(nu, m.psiSizes(b))
		backups = append(backups, reliability.BackupInfo{
			Components: b.Path.NumComponents(),
			PMuxFail:   pmux,
		})
	}
	return reliability.Pr(m.plan.cfg.Lambda, conn.Primary.Path.NumComponents(), backups)
}

func degreeAt(conn *DConnection, i int) int {
	if i < len(conn.Degrees) {
		return conn.Degrees[i]
	}
	return 1
}

// prospectivePsiSizes predicts |Ψ(B,ℓ)| for a *hypothetical* backup on
// bPath protecting primary, if it were admitted with multiplexing degree
// alpha — the information the paper's reservation message collects on its
// forward pass "with various ν values" (§3.4).
func (m *Manager) prospectivePsiSizes(primary, bPath topology.Path, alpha int) []int {
	nu := reliability.NuForDegree(m.plan.cfg.Lambda, alpha)
	links := bPath.Links()
	out := make([]int, len(links))
	for i, l := range links {
		lm := &m.plan.mux[l]
		psi := 0
		for ei := range lm.entries {
			e := &lm.entries[ei]
			s := reliability.SimultaneousActivation(
				m.plan.cfg.Lambda,
				primary.NumComponents(),
				e.conn.Primary.Path.NumComponents(),
				primary.SharedComponents(e.conn.Primary.Path),
			)
			inPi := e.nu <= nu && s >= nu
			if !inPi {
				psi++
			}
		}
		out[i] = psi
	}
	return out
}

// prospectivePr predicts the Pr a connection would get from the given
// primary and backup paths with a uniform multiplexing degree alpha.
func (m *Manager) prospectivePr(primary topology.Path, backups []topology.Path, alpha int) float64 {
	infos := make([]reliability.BackupInfo, 0, len(backups))
	nu := reliability.NuForDegree(m.plan.cfg.Lambda, alpha)
	for _, b := range backups {
		pmux := reliability.MuxFailureBound(nu, m.prospectivePsiSizes(primary, b, alpha))
		infos = append(infos, reliability.BackupInfo{Components: b.NumComponents(), PMuxFail: pmux})
	}
	return reliability.Pr(m.plan.cfg.Lambda, primary.NumComponents(), infos)
}

// EstablishWithPr implements the paper's second QoS-negotiation scheme
// (§3.4): the client's Pr requirement is met "literally". Backups are added
// incrementally, and for each backup count the *largest* multiplexing degree
// (cheapest spare reservation) in [1, maxAlpha] that still meets requiredPr
// is selected. The search mirrors the protocol's two-pass design: the
// primary and the candidate backup paths are routed once, each (count,
// degree) attempt is evaluated against the current network state with
// read-only probes — prospective Ψ sizes for the Pr prediction, spare-pool
// probes for admission — and only the accepted configuration is committed.
// Nothing is established and torn down along the way, so a rejected
// negotiation leaves no trace and consumes no ids.
//
// The request is rejected if requiredPr cannot be met with maxBackups
// backups (the paper renegotiates; callers may retry with a lower Pr).
func (m *Manager) EstablishWithPr(src, dst topology.NodeID, spec rtchan.TrafficSpec, requiredPr float64, maxBackups, maxAlpha int) (*DConnection, error) {
	if requiredPr <= 0 || requiredPr > 1 {
		return nil, fmt.Errorf("core: required Pr %g out of (0,1]", requiredPr)
	}
	if maxBackups < 0 || maxAlpha < 1 {
		return nil, fmt.Errorf("core: invalid negotiation bounds")
	}
	// The probe search below must be atomic against other writers, so the
	// whole negotiation runs as one write transaction.
	defer m.beginWrite()()
	// Plan the primary once; it does not depend on the backup configuration.
	p := m.seqPlan
	m.estCtx.plan(p, src, dst, spec, nil, false)
	if p.err != nil {
		return nil, p.err
	}
	primComps := 2*len(p.prim.links) + 1
	// Zero backups may already satisfy a lax requirement.
	if reliability.Pr(m.plan.cfg.Lambda, primComps, nil) >= requiredPr {
		return m.commitPlan(p)
	}
	primary := topology.NewPathUnchecked(m.Graph(), p.prim.links, p.prim.nodes)

	// Route candidate backup paths once (they do not depend on alpha; the
	// planner leaves estExcl free for routeBackup to reuse).
	var candidates []topology.Path
	{
		excl := m.estExcl.Reset()
		excl.AddPath(primary)
		for i := 0; i < maxBackups; i++ {
			bPath, ok := m.routeBackup(src, dst, spec.Bandwidth, maxAlpha, primary, excl)
			if !ok {
				break
			}
			candidates = append(candidates, bPath)
			excl.AddPath(bPath)
		}
	}

	for nb := 1; nb <= len(candidates); nb++ {
		paths := candidates[:nb]
		for alpha := maxAlpha; alpha >= 1; alpha-- {
			if m.prospectivePr(primary, paths, alpha) < requiredPr {
				continue // too much multiplexing; tighten
			}
			if !m.estCtx.planOnPaths(p, paths, alpha) {
				// Admission failed (e.g. spare pools full at this ν);
				// a smaller alpha only demands more, so try more backups.
				break
			}
			conn, err := m.commitPlan(p)
			if err != nil {
				break
			}
			// The commit wires exactly the probed configuration, so the
			// realized Pr should match the prediction; re-check defensively
			// and keep searching if it somehow falls short.
			if m.connectionPr(conn) >= requiredPr {
				return conn, nil
			}
			if err := m.teardown(conn.ID); err != nil {
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("core: required Pr %g unattainable for %d->%d with <=%d backups",
		requiredPr, src, dst, maxBackups)
}
