package routing

import (
	"github.com/rtcl/bcp/internal/topology"
)

// flowEdge is a residual-network edge for the disjoint-path max-flow.
type flowEdge struct {
	to      int32
	cap     int32
	rev     int32           // index of the reverse edge in edges[to]
	link    topology.LinkID // the topology link this arc represents, or NoLink
	forward bool            // true for original arcs, false for residuals
}

// fnAdd appends a forward arc and its zero-capacity residual to the pooled
// flow network.
func (r *Router) fnAdd(from, to int32, capacity int, link topology.LinkID) {
	r.fnEdges[from] = append(r.fnEdges[from], flowEdge{
		to: to, cap: int32(capacity), rev: int32(len(r.fnEdges[to])), link: link, forward: true,
	})
	r.fnEdges[to] = append(r.fnEdges[to], flowEdge{
		to: from, cap: 0, rev: int32(len(r.fnEdges[from]) - 1), link: topology.NoLink, forward: false,
	})
}

// fnAugment finds one augmenting path by BFS (Edmonds-Karp) over the pooled
// network and pushes one unit of flow, reporting success.
func (r *Router) fnAugment(source, sink int32, numVerts int) bool {
	preds := r.fnPreds[:numVerts]
	for i := range preds {
		preds[i].node = -1
	}
	preds[source].node = source
	q := r.fnQueue[:0]
	q = append(q, source)
	for head := 0; head < len(q); head++ {
		u := q[head]
		if u == sink {
			break
		}
		for i, e := range r.fnEdges[u] {
			if e.cap <= 0 || preds[e.to].node != -1 {
				continue
			}
			preds[e.to] = flowPred{node: u, idx: int32(i)}
			q = append(q, e.to)
		}
	}
	r.fnQueue = q
	if preds[sink].node == -1 {
		return false
	}
	for v := sink; v != source; {
		p := preds[v]
		e := &r.fnEdges[p.node][p.idx]
		e.cap--
		r.fnEdges[v][e.rev].cap++
		v = p.node
	}
	return true
}

// DisjointLinks is MaxDisjointPaths returning raw link sequences instead of
// materialized Paths: up to count mutually component-disjoint routes in
// non-decreasing hop order. Both the outer slice and each inner sequence are
// the router's scratch buffers, valid until the next disjoint search on r.
func (r *Router) DisjointLinks(src, dst topology.NodeID, count int, c Constraint) [][]topology.LinkID {
	if src == dst || count <= 0 {
		return nil
	}
	r.sync()
	g := r.g
	// Split each node v into v_in (2v) -> v_out (2v+1) with capacity 1
	// (count for the shared end nodes) to enforce node-disjointness.
	n := g.NumNodes()
	numVerts := int32(2 * n)
	for i := int32(0); i < numVerts; i++ {
		r.fnEdges[i] = r.fnEdges[i][:0]
	}
	inID := func(v topology.NodeID) int32 { return int32(2 * v) }
	outID := func(v topology.NodeID) int32 { return int32(2*v + 1) }
	for v := topology.NodeID(0); int(v) < n; v++ {
		capV := 1
		switch {
		case v == src || v == dst:
			capV = count
		case !c.nodeOK(v):
			capV = 0
		}
		r.fnAdd(inID(v), outID(v), capV, topology.NoLink)
	}
	for _, l := range g.Links() {
		if !c.linkOK(l.ID) {
			continue
		}
		r.fnAdd(outID(l.From), inID(l.To), 1, l.ID)
	}

	source, sink := outID(src), inID(dst)
	flows := 0
	for flows < count && r.fnAugment(source, sink, int(numVerts)) {
		flows++
	}
	if flows == 0 {
		return nil
	}

	// Extract paths: follow saturated forward link arcs from the source.
	// usedOut[u] lists the indices of u's forward arcs carrying flow;
	// usedHead[u] is the per-node consumption cursor (the pooled stand-in
	// for popping the slice head).
	for i := int32(0); i < numVerts; i++ {
		r.usedOut[i] = r.usedOut[i][:0]
		r.usedHead[i] = 0
	}
	for u := int32(0); u < numVerts; u++ {
		for i, e := range r.fnEdges[u] {
			if e.forward && r.fnEdges[e.to][e.rev].cap > 0 {
				for k := int32(0); k < r.fnEdges[e.to][e.rev].cap; k++ {
					r.usedOut[u] = append(r.usedOut[u], int32(i))
				}
			}
		}
	}
	r.djOut = r.djOut[:0]
	for f := 0; f < flows; f++ {
		for f >= len(r.djBuf) {
			r.djBuf = append(r.djBuf, nil)
		}
		buf := r.djBuf[f][:0]
		u := source
		for u != sink {
			if int(r.usedHead[u]) >= len(r.usedOut[u]) {
				break
			}
			i := r.usedOut[u][r.usedHead[u]]
			r.usedHead[u]++
			e := r.fnEdges[u][i]
			if e.link != topology.NoLink {
				buf = append(buf, e.link)
			}
			u = e.to
		}
		r.djBuf[f] = buf
		if u != sink || len(buf) == 0 || !r.simpleLinks(buf) {
			continue
		}
		r.djOut = append(r.djOut, buf)
	}
	// Insertion sort by hop count. sort.Slice (the previous implementation)
	// bottoms out in the same insertion sort below its 12-element pdqsort
	// threshold, so for every realistic count the order is byte-identical —
	// without the closure and interface allocations.
	out := r.djOut
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && len(out[j]) < len(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// simpleLinks reports whether the link sequence visits no node twice (it is
// contiguous by construction of the flow arcs). This is the scratch-backed
// equivalent of the NewPath validation the extraction used to rely on.
func (r *Router) simpleLinks(links []topology.LinkID) bool {
	g := r.g
	mark := r.nextMark()
	first := g.Link(links[0]).From
	r.nodeMark[first] = mark
	for _, l := range links {
		to := g.Link(l).To
		if r.nodeMark[to] == mark {
			return false
		}
		r.nodeMark[to] = mark
	}
	return true
}

// MaxDisjointPaths finds up to count mutually component-disjoint paths from
// src to dst via unit-capacity max-flow, the approach of the disjoint-path
// algorithms the paper cites ([WHA90, SID91]). Unlike the greedy
// SequentialDisjointPaths it is not trapped by an unlucky first shortest
// path: if k component-disjoint paths exist it finds min(k, count).
//
// Disjointness follows the paper's component model: the returned paths share
// no simplex links and no interior nodes. Constraint c restricts usable
// links and interior nodes; c.MaxHops is ignored (flow augmentation does not
// bound individual path lengths).
func (r *Router) MaxDisjointPaths(src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	linkSets := r.DisjointLinks(src, dst, count, c)
	if len(linkSets) == 0 {
		return nil
	}
	paths := make([]topology.Path, 0, len(linkSets))
	for _, links := range linkSets {
		if p, err := topology.NewPath(r.g, links); err == nil {
			paths = append(paths, p)
		}
	}
	return paths
}

// MaxDisjointPaths is the package-level convenience wrapper; see
// Router.MaxDisjointPaths.
func MaxDisjointPaths(g *topology.Graph, src, dst topology.NodeID, count int, c Constraint) []topology.Path {
	return NewRouter(g).MaxDisjointPaths(src, dst, count, c)
}
