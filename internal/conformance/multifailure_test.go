package conformance

import (
	"testing"

	"github.com/rtcl/bcp/internal/rtchan"
	"github.com/rtcl/bcp/internal/topology"
	"github.com/rtcl/bcp/internal/trace"
)

// The multi-failure edge-legality table: sequences the chaos engine's
// double-failure, re-failure, and repair-race schedules drive through the
// per-node state machine, checked against Figure 4's legal edge set.
func TestMultiFailureEdgeLegality(t *testing.T) {
	type step struct {
		at   int
		from trace.State
		to   trace.State
		ch   int64 // 0 means channel 1
	}
	cases := []struct {
		name     string
		steps    []step
		wantRule string // "" means the sequence must pass
		fragment string
	}{
		{
			// A backup fails while the channel it covers is still in
			// recovery: B -> U is a legal Figure-4 edge.
			name: "re-fail during recovery",
			steps: []step{
				{0, trace.StateN, trace.StateB, 0},
				{10, trace.StateB, trace.StateU, 0},
				{20, trace.StateU, trace.StateB, 0}, // rejoin
				{30, trace.StateB, trace.StateU, 0}, // fails again mid-window
				{40, trace.StateU, trace.StateB, 0},
			},
		},
		{
			// Repair racing promotion: the channel rejoins (U -> B) and is
			// immediately promoted (B -> P) — the ping-pong pattern.
			name: "repair races promotion",
			steps: []step{
				{0, trace.StateN, trace.StateB, 0},
				{10, trace.StateB, trace.StateP, 0}, // promoted
				{20, trace.StateP, trace.StateU, 0}, // primary-path failure
				{30, trace.StateU, trace.StateB, 0}, // rejoined after repair
				{40, trace.StateB, trace.StateP, 0}, // promoted again
			},
		},
		{
			// Rejoin-timer expiry mid-recovery tears the channel down
			// (U -> N) and a fresh install may later recreate it.
			name: "expiry then reinstall",
			steps: []step{
				{0, trace.StateN, trace.StateB, 0},
				{10, trace.StateB, trace.StateU, 0},
				{20, trace.StateU, trace.StateN, 0}, // timer expired
				{30, trace.StateN, trace.StateB, 0}, // replenished backup
			},
		},
		{
			// A channel cannot be promoted straight out of the unhealthy
			// state: repair must complete the rejoin (U -> B) first.
			name: "promotion from U is illegal",
			steps: []step{
				{0, trace.StateN, trace.StateB, 0},
				{10, trace.StateB, trace.StateU, 0},
				{20, trace.StateU, trace.StateP, 0},
			},
			wantRule: "state-machine",
			fragment: "illegal",
		},
		{
			// A failure report for a channel this node never installed:
			// N -> U is not a Figure-4 edge (N can only go to P or B).
			name: "failure of unknown channel is illegal",
			steps: []step{
				{0, trace.StateN, trace.StateU, 0},
			},
			wantRule: "state-machine",
			fragment: "illegal",
		},
		{
			// Double failure: both channels unhealthy at once is legal per
			// node — the illegality chaos hunts for is claims leaking or
			// states diverging from the resource plane, not U+U itself.
			name: "both channels down",
			steps: []step{
				{0, trace.StateN, trace.StateP, 1},
				{5, trace.StateN, trace.StateB, 2},
				{10, trace.StateP, trace.StateU, 1},
				{12, trace.StateB, trace.StateU, 2},
				{30, trace.StateU, trace.StateB, 1},
				{35, trace.StateU, trace.StateB, 2},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var events []trace.Event
			for _, s := range tc.steps {
				ch := s.ch
				if ch == 0 {
					ch = 1
				}
				events = append(events, trace.Event{
					At: ms(s.at), Kind: trace.KindState, Node: 0,
					Link: topology.NoLink, Conn: 1, Channel: rtchan.ChannelID(ch),
					From: s.from, To: s.to,
				})
			}
			viols := Check(events, Params{})
			if tc.wantRule == "" {
				if len(viols) != 0 {
					t.Fatalf("legal sequence flagged: %v", viols)
				}
				return
			}
			wantRule(t, viols, tc.wantRule, tc.fragment)
		})
	}
}

// TestRepairRaceClaimLifecycle pins the claim legality of the repair-racing-
// promotion window: a second activation of a rejoined channel claims again
// after its first claims were converted — legal — while re-claiming without
// an intervening convert or release is the double-claim the chaos oracle
// must keep flagging.
func TestRepairRaceClaimLifecycle(t *testing.T) {
	legal := []trace.Event{
		{At: ms(10), Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Conn: 1, Channel: 2},
		{At: ms(12), Kind: trace.KindClaimConvert, Node: topology.NoNode, Link: 3, Conn: 1, Channel: 2},
		// Channel demoted and re-promoted after repair: a fresh claim on
		// the same link is a new episode.
		{At: ms(40), Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Conn: 1, Channel: 2},
		{At: ms(42), Kind: trace.KindClaimRelease, Node: topology.NoNode, Link: 3, Conn: 1, Channel: 2},
	}
	if viols := Check(legal, Params{}); len(viols) != 0 {
		t.Fatalf("legal re-claim flagged: %v", viols)
	}

	illegal := []trace.Event{
		{At: ms(10), Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Conn: 1, Channel: 2},
		// Promotion raced the repair: the same claim is made again before
		// the first was converted or released.
		{At: ms(11), Kind: trace.KindClaim, Node: topology.NoNode, Link: 3, Conn: 1, Channel: 2},
	}
	wantRule(t, Check(illegal, Params{}), "claim", "double-claims")
}
