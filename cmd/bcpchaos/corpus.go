package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// corpusWriter harvests wire-frame images observed during chaos episodes
// (clean frames at send time and corrupted ones post-mangling) into Go
// native fuzz corpus files, deduplicated by content.
type corpusWriter struct {
	dir    string
	frames map[[32]byte][]byte
	cap    int
}

func newCorpusWriter(dir string) *corpusWriter {
	return &corpusWriter{dir: dir, frames: make(map[[32]byte][]byte), cap: 512}
}

// Observe copies a frame (the buffer is pooled — it must not be retained).
func (w *corpusWriter) Observe(frame []byte) {
	if len(w.frames) >= w.cap {
		return
	}
	h := sha256.Sum256(frame)
	if _, dup := w.frames[h]; dup {
		return
	}
	w.frames[h] = append([]byte(nil), frame...)
}

// Flush writes one corpus file per distinct frame in Go's native fuzz
// encoding and returns how many were written.
func (w *corpusWriter) Flush() (int, error) {
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for h, frame := range w.frames {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(frame)))
		name := filepath.Join(w.dir, hex.EncodeToString(h[:8]))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
