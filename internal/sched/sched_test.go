package sched

import (
	"testing"
	"time"

	"github.com/rtcl/bcp/internal/sim"
)

func TestLinkSerializesAtCapacity(t *testing.T) {
	eng := sim.New(1)
	var arrivals []sim.Time
	// 1 Mbps link, no propagation: a 1250-byte packet takes 10 ms.
	l := NewLink(eng, 1, 0, 0, func(Packet) { arrivals = append(arrivals, eng.Now()) })
	for i := 0; i < 3; i++ {
		l.Enqueue(Packet{Class: ClassRealTime, Size: 1250})
	}
	eng.Run()
	want := []sim.Time{
		sim.Time(10 * time.Millisecond),
		sim.Time(20 * time.Millisecond),
		sim.Time(30 * time.Millisecond),
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival %d at %v, want %v", i, arrivals[i], want[i])
		}
	}
	st := l.Stats()
	if st.Delivered != 3 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyTime != sim.Duration(30*time.Millisecond) {
		t.Fatalf("busy time = %v", st.BusyTime)
	}
}

func TestLinkPropagationDelayPipelines(t *testing.T) {
	eng := sim.New(1)
	var arrivals []sim.Time
	l := NewLink(eng, 1, 5*time.Millisecond, 0, func(Packet) { arrivals = append(arrivals, eng.Now()) })
	l.Enqueue(Packet{Class: ClassRealTime, Size: 1250})
	l.Enqueue(Packet{Class: ClassRealTime, Size: 1250})
	eng.Run()
	// Transmission 10ms each, propagation 5ms: arrivals at 15 and 25 ms —
	// propagation overlaps the next transmission.
	if arrivals[0] != sim.Time(15*time.Millisecond) || arrivals[1] != sim.Time(25*time.Millisecond) {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestPriorityOrdering(t *testing.T) {
	eng := sim.New(1)
	var order []Class
	l := NewLink(eng, 1, 0, 0, func(p Packet) { order = append(order, p.Class) })
	// Fill while busy: first packet occupies the link, then best-effort and
	// control queue up; control must jump ahead.
	l.Enqueue(Packet{Class: ClassRealTime, Size: 1250})
	l.Enqueue(Packet{Class: ClassBestEffort, Size: 1250})
	l.Enqueue(Packet{Class: ClassBestEffort, Size: 1250})
	l.Enqueue(Packet{Class: ClassControl, Size: 125})
	eng.Run()
	want := []Class{ClassRealTime, ClassControl, ClassBestEffort, ClassBestEffort}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLinkDownDropsEverything(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	l := NewLink(eng, 1, 0, 0, func(Packet) { delivered++ })
	l.Enqueue(Packet{Class: ClassRealTime, Size: 1250})
	l.Enqueue(Packet{Class: ClassRealTime, Size: 1250})
	// Fail the link mid-transmission of the first packet.
	eng.Schedule(5*time.Millisecond, func() { l.SetDown(true) })
	// More traffic while down.
	eng.Schedule(20*time.Millisecond, func() { l.Enqueue(Packet{Class: ClassRealTime, Size: 1250}) })
	eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered = %d over a failed link", delivered)
	}
	st := l.Stats()
	if st.DroppedDown != 3 {
		t.Fatalf("dropped = %d, want 3 (in-flight + queued + late)", st.DroppedDown)
	}
}

func TestLinkRepairResumesService(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	l := NewLink(eng, 1, 0, 0, func(Packet) { delivered++ })
	l.SetDown(true)
	l.Enqueue(Packet{Class: ClassRealTime, Size: 125})
	eng.Schedule(time.Millisecond, func() {
		l.SetDown(false)
		l.Enqueue(Packet{Class: ClassRealTime, Size: 125})
	})
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestQueueBound(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, 1, 0, 2, func(Packet) {})
	for i := 0; i < 5; i++ {
		l.Enqueue(Packet{Class: ClassBestEffort, Size: 1250})
	}
	// One transmitting + 2 queued; 2 dropped.
	if st := l.Stats(); st.DroppedQueue != 2 {
		t.Fatalf("dropped = %d, want 2", st.DroppedQueue)
	}
	eng.Run()
}

func TestEnqueuePanics(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, 1, 0, 0, func(Packet) {})
	for _, p := range []Packet{
		{Class: numClasses, Size: 10},
		{Class: ClassControl, Size: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", p)
				}
			}()
			l.Enqueue(p)
		}()
	}
}

func TestTokenBucketBasics(t *testing.T) {
	tb := NewTokenBucket(10, 5) // 10 tokens/s, depth 5
	now := sim.Time(0)
	// Burst drains the bucket.
	for i := 0; i < 5; i++ {
		if !tb.Admit(now, 1) {
			t.Fatalf("admit %d failed", i)
		}
	}
	if tb.Admit(now, 1) {
		t.Fatal("admitted past the burst")
	}
	// After 100 ms one token has accrued.
	now = now.Add(100 * time.Millisecond)
	if !tb.Admit(now, 1) {
		t.Fatal("refill failed")
	}
	if tb.Admit(now, 1) {
		t.Fatal("double admit")
	}
}

func TestTokenBucketNextEligible(t *testing.T) {
	tb := NewTokenBucket(10, 1)
	now := sim.Time(0)
	if !tb.Admit(now, 1) {
		t.Fatal("initial admit failed")
	}
	next := tb.NextEligible(now, 1)
	if next != sim.Time(100*time.Millisecond) {
		t.Fatalf("next = %v, want 100ms", next)
	}
	if got := tb.NextEligible(next, 1); got != next {
		t.Fatalf("eligible-now case returned %v", got)
	}
	// NextEligible must not consume tokens.
	if !tb.Admit(next, 1) {
		t.Fatal("NextEligible consumed tokens")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb := NewTokenBucket(1000, 2)
	if got := tb.Tokens(sim.Time(time.Hour)); got != 2 {
		t.Fatalf("tokens = %g, want burst cap 2", got)
	}
}

func TestRegulatorShapesLinkTraffic(t *testing.T) {
	// End-to-end: a bursty source regulated to 100 msgs/s over a fast link
	// must deliver messages no faster than the token rate.
	eng := sim.New(1)
	var arrivals []sim.Time
	l := NewLink(eng, 100, 0, 0, func(Packet) { arrivals = append(arrivals, eng.Now()) })
	tb := NewTokenBucket(100, 1)
	var send func(i int)
	send = func(i int) {
		if i >= 10 {
			return
		}
		next := tb.NextEligible(eng.Now(), 1)
		eng.At(next, func() {
			if !tb.Admit(eng.Now(), 1) {
				t.Error("admission failed at eligible time")
				return
			}
			l.Enqueue(Packet{Class: ClassRealTime, Size: 125})
			send(i + 1)
		})
	}
	send(0)
	eng.Run()
	if len(arrivals) != 10 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i].Sub(arrivals[i-1]); gap < 9*time.Millisecond {
			t.Fatalf("gap %d = %v, regulator failed", i, gap)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassControl.String() != "control" || Class(9).String() != "class(9)" {
		t.Fatal("class strings wrong")
	}
}
